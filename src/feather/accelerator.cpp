#include "feather/accelerator.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "dataflow/access_pattern.hpp"
#include "common/log.hpp"

namespace feather {

std::string
LayerStats::toString() const
{
    return strCat("cycles=", cycles, " (compute=", compute_cycles,
                  " wload=", weight_load_cycles, " fill=", fill_cycles,
                  " rstall=", read_stall_cycles, " wstall=",
                  write_stall_cycles, ") macs=", macs,
                  " stab r/w=", stab_reads, "/", stab_writes,
                  " ob=", ob_accumulates, " dram=", dram_words);
}

namespace {

/** Mixed-radix decode of a flat index over parallel dims (dims[0] outer). */
Coord
decodeSpatial(const std::vector<ParallelDim> &dims, int64_t flat)
{
    Coord idx;
    for (size_t i = dims.size(); i-- > 0;) {
        idx[dims[i].dim] = flat % dims[i].degree;
        flat /= dims[i].degree;
    }
    return idx;
}

} // namespace

bool
isReducedDim(const LayerSpec &layer, Dim d)
{
    if (layer.type == OpType::Gemm) return d == Dim::K;
    if (layer.conv.depthwise) return d == Dim::R || d == Dim::S;
    return d == Dim::C || d == Dim::R || d == Dim::S;
}

Coord
oactToIactSpace(const LayerSpec &layer, const Coord &o)
{
    Coord c;
    if (layer.type == OpType::Gemm) {
        c[Dim::M] = o[Dim::M];
        c[Dim::K] = o[Dim::N];
    } else {
        c[Dim::C] = layer.conv.depthwise ? o[Dim::C] : o[Dim::M];
        c[Dim::H] = o[Dim::P];
        c[Dim::W] = o[Dim::Q];
    }
    return c;
}

Extents
oactIactExtents(const LayerSpec &layer)
{
    Extents e;
    if (layer.type == OpType::Gemm) {
        e[Dim::M] = layer.gemm.m;
        e[Dim::K] = layer.gemm.n;
    } else {
        e[Dim::C] = layer.conv.depthwise ? layer.conv.c : layer.conv.m;
        e[Dim::H] = layer.conv.outH();
        e[Dim::W] = layer.conv.outW();
    }
    return e;
}

FeatherAccelerator::FeatherAccelerator(FeatherConfig cfg)
    : cfg_(cfg), nest_(cfg.aw, cfg.ah, cfg.max_local), birrd_(cfg.aw),
      router_(birrd_.topology()),
      stab_(BankedScratchpad<int8_t>(cfg.aw, cfg.stab_depth),
            BankedScratchpad<int8_t>(cfg.aw, cfg.stab_depth))
{
    FEATHER_CHECK(isPow2(uint64_t(cfg.aw)), "AW must be a power of two");
}

void
FeatherAccelerator::enableTrace(size_t max_events)
{
    trace_cap_ = max_events;
    trace_.clear();
    trace_.reserve(max_events);
}

void
FeatherAccelerator::recordTrace(TraceEvent::Kind kind, int64_t step,
                                int64_t bank, int64_t addr)
{
    if (trace_.size() < trace_cap_) {
        trace_.push_back(TraceEvent{kind, step, bank, addr});
    }
}

void
FeatherAccelerator::loadIacts(const Int8Tensor &iacts, const Layout &layout)
{
    Extents ext;
    const bool is_gemm = iacts.rank() == 2;
    if (is_gemm) {
        ext[Dim::M] = iacts.dim(0);
        ext[Dim::K] = iacts.dim(1);
    } else {
        FEATHER_CHECK(iacts.rank() == 4 && iacts.dim(0) == 1,
                      "conv iacts must be [1,C,H,W]");
        ext[Dim::C] = iacts.dim(1);
        ext[Dim::H] = iacts.dim(2);
        ext[Dim::W] = iacts.dim(3);
    }
    current_layout_ = BoundLayout(layout, ext);

    const int64_t wpl = ceilDiv(current_layout_.lineSize(), int64_t(cfg_.aw));
    FEATHER_CHECK(current_layout_.numLines() * wpl <= cfg_.stab_depth,
                  "iacts exceed StaB capacity");
    // A bank's slots within one line (slot = bank + j*AW) land at contiguous
    // addresses line*wpl + j, so each (line, bank) run becomes one bulk
    // write — the DMA burst the host interface would issue.
    std::vector<int8_t> burst(static_cast<size_t>(wpl));
    for (int64_t line = 0; line < current_layout_.numLines(); ++line) {
        for (int64_t bank = 0;
             bank < std::min<int64_t>(cfg_.aw, current_layout_.lineSize());
             ++bank) {
            int64_t n = 0;
            for (int64_t slot = bank; slot < current_layout_.lineSize();
                 slot += cfg_.aw) {
                const Coord c = current_layout_.coordAt({line, slot});
                int8_t v = 0;
                if (is_gemm) {
                    if (c[Dim::M] < ext[Dim::M] && c[Dim::K] < ext[Dim::K]) {
                        v = iacts.at2(c[Dim::M], c[Dim::K]);
                    }
                } else {
                    if (c[Dim::C] < ext[Dim::C] && c[Dim::H] < ext[Dim::H] &&
                        c[Dim::W] < ext[Dim::W]) {
                        v = iacts.at4(0, c[Dim::C], c[Dim::H], c[Dim::W]);
                    }
                }
                burst[size_t(n++)] = v;
            }
            stab_.ping().writeRange(bank, line * wpl, burst.data(), n);
        }
    }
    iacts_loaded_ = true;
}

LayerStats
FeatherAccelerator::run(const LayerSpec &layer, const Int8Tensor &weights,
                        const NestMapping &mapping, const Layout &out_layout,
                        const LayerQuant &quant)
{
    FEATHER_CHECK(iacts_loaded_, "loadIacts() must precede run()");
    const std::string err = mapping.validate(layer, cfg_.aw, cfg_.ah);
    FEATHER_CHECK(err.empty(), "invalid mapping: ", err);
    for (const auto &pd : mapping.local) {
        FEATHER_CHECK(isReducedDim(layer, pd.dim),
                      "local dims must be reduction dims, got ",
                      dimName(pd.dim));
    }
    FEATHER_CHECK(mapping.t1() <= cfg_.max_local,
                  "local tile exceeds PE register file");

    const bool is_gemm = layer.type == OpType::Gemm;
    if (!is_gemm) {
        FEATHER_CHECK(layer.conv.n == 1,
                      "the cycle simulator executes batch-1 conv layers");
    }
    const Extents ext = is_gemm ? gemmExtents(layer.gemm)
                                : convExtents(layer.conv);
    const ConvShape &cs = layer.conv;

    // Iterated dims in temporal order (outer -> inner): weight-affecting
    // dims outermost so weights stay stationary across the inner output
    // sweep; reduction tiles between them so OB entries complete before the
    // next weight tile arrives.
    std::vector<Dim> dims_order;
    if (is_gemm) {
        dims_order = {Dim::N, Dim::K, Dim::M};
    } else if (cs.depthwise) {
        dims_order = {Dim::C, Dim::R, Dim::S, Dim::P, Dim::Q};
    } else {
        dims_order = {Dim::M, Dim::C, Dim::R, Dim::S, Dim::P, Dim::Q};
    }
    std::vector<Dim> weight_dims;
    if (is_gemm) {
        weight_dims = {Dim::N, Dim::K};
    } else if (cs.depthwise) {
        weight_dims = {Dim::C, Dim::R, Dim::S};
    } else {
        weight_dims = {Dim::M, Dim::C, Dim::R, Dim::S};
    }

    // Per-dim unroll factors and temporal step counts.
    DimMap unroll;
    for (int i = 0; i < kNumDims; ++i) unroll[Dim(i)] = 1;
    for (const auto &pd : mapping.local) unroll[pd.dim] *= pd.degree;
    for (const auto &pd : mapping.cols) unroll[pd.dim] *= pd.degree;
    for (const auto &pd : mapping.rows) unroll[pd.dim] *= pd.degree;

    std::vector<LoopLevel> levels;
    int64_t reduction_step_combos = 1;
    for (Dim d : dims_order) {
        const int64_t steps = ceilDiv(std::max<int64_t>(ext[d], 1),
                                      unroll[d]);
        levels.push_back({d, steps});
        if (isReducedDim(layer, d)) reduction_step_combos *= steps;
    }
    const LoopNest nest_loops(levels);

    // Reduction dims unrolled across rows contribute once per row copy
    // (in-situ OB temporal reduction, e.g. Fig. 10 workload D maps K over
    // the whole 2D array).
    int64_t reduced_row_copies = 1;
    for (const auto &pd : mapping.rows) {
        if (isReducedDim(layer, pd.dim)) reduced_row_copies *= pd.degree;
    }
    const int64_t expected_contribs =
        reduction_step_combos * reduced_row_copies;

    // Local-dim strides within the unroll: coord = step*U + l + L*col +
    // L*C*row for each dim.
    DimMap local_deg, col_deg, row_deg;
    for (int i = 0; i < kNumDims; ++i) {
        local_deg[Dim(i)] = 1;
        col_deg[Dim(i)] = 1;
        row_deg[Dim(i)] = 1;
    }
    for (const auto &pd : mapping.local) local_deg[pd.dim] = pd.degree;
    for (const auto &pd : mapping.cols) col_deg[pd.dim] = pd.degree;
    for (const auto &pd : mapping.rows) row_deg[pd.dim] = pd.degree;

    const int64_t t1 = mapping.t1();
    const int64_t cols_used = mapping.colsUsed();
    const int64_t rows_used = mapping.rowsUsed();

    // Column assignments and reduction-group structure: columns sharing all
    // non-reduced col indices reduce together through BIRRD.
    std::vector<ParallelDim> group_dims; // non-reduced col dims
    for (const auto &pd : mapping.cols) {
        if (!isReducedDim(layer, pd.dim)) group_dims.push_back(pd);
    }
    const int64_t num_groups = totalDegree(group_dims);
    std::vector<ColAssign> col_assign(static_cast<size_t>(cols_used));
    for (int64_t c = 0; c < cols_used; ++c) {
        col_assign[size_t(c)].idx = decodeSpatial(mapping.cols, c);
        int64_t g = 0;
        for (const auto &pd : group_dims) {
            g = g * pd.degree + col_assign[size_t(c)].idx[pd.dim];
        }
        col_assign[size_t(c)].group = int(g);
    }
    std::vector<Coord> row_assign(static_cast<size_t>(rows_used));
    for (int64_t r = 0; r < rows_used; ++r) {
        row_assign[size_t(r)] = decodeSpatial(mapping.rows, r);
    }
    std::vector<Coord> local_assign(static_cast<size_t>(t1));
    for (int64_t l = 0; l < t1; ++l) {
        local_assign[size_t(l)] = decodeSpatial(mapping.local, l);
    }

    // Do iacts depend on the row index? (Shared top-to-bottom stream if
    // not; otherwise the stream must deliver distinct vectors per row.)
    bool rows_affect_iacts = false;
    for (const auto &pd : mapping.rows) {
        const bool affects =
            is_gemm ? (pd.dim == Dim::M || pd.dim == Dim::K)
                    : (pd.dim != Dim::M);
        if (affects && pd.degree > 1) rows_affect_iacts = true;
    }

    // Output layout bound in next-layer iAct space.
    const BoundLayout out_bound(out_layout, oactIactExtents(layer));
    const int64_t out_wpl = ceilDiv(out_bound.lineSize(), int64_t(cfg_.aw));
    FEATHER_CHECK(out_bound.numLines() * out_wpl <= cfg_.stab_depth,
                  "oacts exceed StaB capacity");
    const int64_t in_wpl =
        ceilDiv(current_layout_.lineSize(), int64_t(cfg_.aw));

    // Output Buffer: per-(bank,addr) accumulator with completion countdown.
    struct ObEntry
    {
        int64_t acc = 0;
        int64_t remaining = 0;
    };
    std::unordered_map<int64_t, ObEntry> ob;
    auto ob_key = [&](int64_t bank, int64_t addr) {
        return bank * cfg_.stab_depth + addr;
    };

    LayerStats stats;
    const int64_t weight_load_cycles = int64_t(cfg_.ah) * t1;
    int64_t compute_since_load = 0;
    bool first_load = true;
    DimMap prev_weight_step;
    for (int i = 0; i < kNumDims; ++i) prev_weight_step[Dim(i)] = -1;

    // Per-run scratch carved out of the bump arena: one reset, flat POD
    // blocks, no allocator traffic inside the step loop. The PortValue
    // buffers stay as (hoisted) vectors — std::optional is not trivial.
    arena_.reset();
    int16_t *iact_vals =
        arena_.allocArray<int16_t>(size_t(cfg_.aw) * size_t(t1));
    std::fill_n(iact_vals, size_t(cfg_.aw) * size_t(t1), int16_t(0));
    uint8_t *col_active = arena_.allocArray<uint8_t>(size_t(cfg_.aw));
    int64_t *group_line = arena_.allocArray<int64_t>(size_t(num_groups));
    int64_t *group_bank = arena_.allocArray<int64_t>(size_t(num_groups));
    uint8_t *group_live = arena_.allocArray<uint8_t>(size_t(num_groups));
    int64_t *bank_reads = arena_.allocArray<int64_t>(size_t(cfg_.aw));
    int64_t *seen_key = arena_.allocArray<int64_t>(size_t(cols_used));
    int16_t *seen_val = arena_.allocArray<int16_t>(size_t(cols_used));
    int *wave_of_group = arena_.allocArray<int>(size_t(num_groups));
    // Greedy wave split never opens more waves than live groups, so a
    // num_groups x AW occupancy table bounds it.
    uint8_t *wave_bank_used =
        arena_.allocArray<uint8_t>(size_t(num_groups) * size_t(cfg_.aw));
    int *dense_id = arena_.allocArray<int>(size_t(num_groups));
    int *dense_dest = arena_.allocArray<int>(size_t(num_groups));

    // Routing/NoC bookkeeping hoisted out of the inner loop and reused
    // across waves and steps.
    RouteRequest req;
    std::vector<PortValue> emission(size_t(cfg_.aw));
    std::vector<PortValue> inputs(size_t(cfg_.aw));
    std::vector<PortValue> outputs;
    std::vector<PortValue> noc_scratch;

    Coord step;
    int64_t step_index = 0;
    bool more = true;
    while (more) {
        // Base coordinate of this temporal step.
        Coord base;
        for (Dim d : dims_order) base[d] = step[d] * unroll[d];

        // ---- weight tile management (ping-pong shadow load) ----
        bool weights_changed = false;
        for (Dim d : weight_dims) {
            if (step[d] != prev_weight_step[d]) weights_changed = true;
        }
        if (weights_changed) {
            for (Dim d : weight_dims) prev_weight_step[d] = step[d];
            for (int64_t r = 0; r < rows_used; ++r) {
                for (int64_t c = 0; c < cols_used; ++c) {
                    for (int64_t l = 0; l < t1; ++l) {
                        auto coord_of = [&](Dim d) {
                            return base[d] + local_assign[size_t(l)][d] +
                                   local_deg[d] *
                                       (col_assign[size_t(c)].idx[d] +
                                        col_deg[d] *
                                            row_assign[size_t(r)][d]);
                        };
                        int16_t w = 0;
                        if (is_gemm) {
                            const int64_t k = coord_of(Dim::K);
                            const int64_t n = coord_of(Dim::N);
                            if (k < ext[Dim::K] && n < ext[Dim::N]) {
                                w = int16_t(int16_t(weights.at2(k, n)) -
                                            quant.weight_zp);
                                ++stats.strb_reads;
                                ++stats.dram_words;
                            }
                        } else {
                            const int64_t m = coord_of(Dim::M);
                            const int64_t cc = coord_of(Dim::C);
                            const int64_t rr = coord_of(Dim::R);
                            const int64_t ss = coord_of(Dim::S);
                            const int64_t m_ext =
                                cs.depthwise ? 1 : ext[Dim::M];
                            if (m < m_ext && cc < ext[Dim::C] &&
                                rr < ext[Dim::R] && ss < ext[Dim::S]) {
                                w = int16_t(
                                    int16_t(cs.depthwise
                                                ? weights.at4(cc, 0, rr, ss)
                                                : weights.at4(m, cc, rr, ss)) -
                                    quant.weight_zp);
                                ++stats.strb_reads;
                                ++stats.dram_words;
                            }
                        }
                        nest_.loadWeight(int(r), int(c), int(l), w);
                    }
                }
            }
            nest_.swapWeightBanks();
            ++stats.weight_reload_events;
            const int64_t exposed =
                first_load ? weight_load_cycles
                           : std::max<int64_t>(0, weight_load_cycles -
                                                      compute_since_load);
            stats.weight_load_cycles += exposed;
            compute_since_load = 0;
            first_load = false;
        }

        // ---- per-step feed / bus / compute accounting + datapath ----
        int64_t feed_cycles = 0;
        int64_t bus_cycles = 0;
        const int64_t row_variants = rows_affect_iacts ? rows_used : 1;

        for (int64_t r = 0; r < rows_used; ++r) {
            // ---- group destinations and column liveness ----
            std::fill_n(col_active, size_t(cfg_.aw), uint8_t(0));
            std::fill_n(group_live, size_t(num_groups), uint8_t(0));
            for (int64_t c = 0; c < cols_used; ++c) {
                const int g = col_assign[size_t(c)].group;
                auto coord_of = [&](Dim d) {
                    return base[d] + local_assign[0][d] +
                           local_deg[d] * (col_assign[size_t(c)].idx[d] +
                                           col_deg[d] *
                                               row_assign[size_t(r)][d]);
                };
                Coord oc;
                bool live = true;
                if (is_gemm) {
                    oc[Dim::M] = coord_of(Dim::M);
                    oc[Dim::N] = coord_of(Dim::N);
                    live = oc[Dim::M] < ext[Dim::M] &&
                           oc[Dim::N] < ext[Dim::N];
                } else if (cs.depthwise) {
                    oc[Dim::C] = coord_of(Dim::C);
                    oc[Dim::P] = coord_of(Dim::P);
                    oc[Dim::Q] = coord_of(Dim::Q);
                    live = oc[Dim::C] < ext[Dim::C] &&
                           oc[Dim::P] < ext[Dim::P] &&
                           oc[Dim::Q] < ext[Dim::Q];
                } else {
                    oc[Dim::M] = coord_of(Dim::M);
                    oc[Dim::P] = coord_of(Dim::P);
                    oc[Dim::Q] = coord_of(Dim::Q);
                    live = oc[Dim::M] < ext[Dim::M] &&
                           oc[Dim::P] < ext[Dim::P] &&
                           oc[Dim::Q] < ext[Dim::Q];
                }
                col_active[size_t(c)] = live;
                if (!live) continue;
                if (!group_live[size_t(g)]) {
                    const LineAddr a =
                        out_bound.addrOf(oactToIactSpace(layer, oc));
                    group_live[size_t(g)] = true;
                    group_bank[size_t(g)] = a.slot % cfg_.aw;
                    group_line[size_t(g)] =
                        a.line * out_wpl + a.slot / cfg_.aw;
                }
            }

            // ---- gather iacts for the active columns of this row ----
            // Columns requesting the same word in the same cycle share one
            // bank access (the point-to-point distribution broadcasts it).
            int64_t row_feed = 0;
            for (int64_t l = 0; l < t1; ++l) {
                std::fill_n(bank_reads, size_t(cfg_.aw), int64_t(0));
                int64_t num_seen = 0;
                for (int64_t c = 0; c < cols_used; ++c) {
                    if (!col_active[size_t(c)]) continue;
                    auto coord_of = [&](Dim d) {
                        return base[d] + local_assign[size_t(l)][d] +
                               local_deg[d] *
                                   (col_assign[size_t(c)].idx[d] +
                                    col_deg[d] * row_assign[size_t(r)][d]);
                    };
                    int16_t v = 0;
                    bool do_read = false;
                    Coord ic;
                    if (is_gemm) {
                        const int64_t m = coord_of(Dim::M);
                        const int64_t k = coord_of(Dim::K);
                        if (m < ext[Dim::M] && k < ext[Dim::K]) {
                            ic[Dim::M] = m;
                            ic[Dim::K] = k;
                            do_read = true;
                        }
                    } else {
                        const int64_t cc = coord_of(Dim::C);
                        const int64_t p = coord_of(Dim::P);
                        const int64_t q = coord_of(Dim::Q);
                        const int64_t rr = coord_of(Dim::R);
                        const int64_t ss = coord_of(Dim::S);
                        const int64_t h = p * cs.stride + rr - cs.pad;
                        const int64_t w = q * cs.stride + ss - cs.pad;
                        if (cc < ext[Dim::C] && p < ext[Dim::P] &&
                            q < ext[Dim::Q] && rr < ext[Dim::R] &&
                            ss < ext[Dim::S] && h >= 0 && h < ext[Dim::H] &&
                            w >= 0 && w < ext[Dim::W]) {
                            ic[Dim::C] = cc;
                            ic[Dim::H] = h;
                            ic[Dim::W] = w;
                            do_read = true;
                        }
                    }
                    if (do_read) {
                        const LineAddr a = current_layout_.addrOf(ic);
                        const int64_t bank = a.slot % cfg_.aw;
                        const int64_t addr =
                            a.line * in_wpl + a.slot / cfg_.aw;
                        const int64_t key = bank * cfg_.stab_depth + addr;
                        bool shared = false;
                        for (int64_t s = 0; s < num_seen; ++s) {
                            if (seen_key[s] == key) {
                                v = seen_val[s];
                                shared = true;
                                break;
                            }
                        }
                        if (!shared) {
                            v = int16_t(
                                int16_t(stab_.ping().read(bank, addr)) -
                                quant.iact_zp);
                            seen_key[num_seen] = key;
                            seen_val[num_seen] = v;
                            ++num_seen;
                            ++stats.stab_reads;
                            ++bank_reads[size_t(bank)];
                            recordTrace(TraceEvent::Kind::StabRead,
                                        step_index, bank, addr);
                        }
                    }
                    iact_vals[size_t(c) * size_t(t1) + size_t(l)] = v;
                }
                // Feed cycles for this stream slot: dual-port banks.
                int64_t worst = 1;
                for (int64_t b = 0; b < cfg_.aw; ++b) {
                    worst = std::max(worst, ceilDiv<int64_t>(
                                                bank_reads[size_t(b)], 2));
                }
                row_feed += worst;
            }
            if (r < row_variants) feed_cycles += row_feed;

            // ---- NEST emission ----
            nest_.computeRowEmission(int(r), iact_vals, t1, col_active,
                                     emission.data());
            int64_t active_cols = 0;
            for (int64_t c = 0; c < cfg_.aw; ++c) {
                if (col_active[size_t(c)]) ++active_cols;
            }
            stats.macs += t1 * active_cols;

            // ---- wave-split groups so each StaB bank is hit once ----
            std::fill_n(wave_of_group, size_t(num_groups), -1);
            int num_waves = 0;
            for (int64_t g = 0; g < num_groups; ++g) {
                if (!group_live[size_t(g)]) continue;
                int w = 0;
                while (w < num_waves &&
                       wave_bank_used[size_t(w) * size_t(cfg_.aw) +
                                      size_t(group_bank[size_t(g)])]) {
                    ++w;
                }
                if (w == num_waves) {
                    std::fill_n(wave_bank_used + size_t(w) * size_t(cfg_.aw),
                                size_t(cfg_.aw), uint8_t(0));
                    ++num_waves;
                }
                wave_bank_used[size_t(w) * size_t(cfg_.aw) +
                               size_t(group_bank[size_t(g)])] = 1;
                wave_of_group[size_t(g)] = w;
            }
            bus_cycles += std::max(num_waves, 1);

            // ---- BIRRD reduction + reordering per wave ----
            for (int w = 0; w < num_waves; ++w) {
                req.group_of_input.assign(size_t(cfg_.aw), -1);
                req.dests_of_group.clear();
                std::fill_n(dense_id, size_t(num_groups), -1);
                int num_dense = 0;
                for (int64_t c = 0; c < cols_used; ++c) {
                    if (!col_active[size_t(c)]) continue;
                    const int g = col_assign[size_t(c)].group;
                    if (wave_of_group[size_t(g)] != w) continue;
                    if (dense_id[size_t(g)] < 0) {
                        dense_id[size_t(g)] = num_dense;
                        dense_dest[num_dense++] = int(group_bank[size_t(g)]);
                    }
                    req.group_of_input[size_t(c)] = dense_id[size_t(g)];
                }
                for (int i = 0; i < num_dense; ++i) {
                    req.dests_of_group.push_back({dense_dest[i]});
                }
                if (num_dense == 0) continue;

                const auto cfg_word = router_.route(req);
                FEATHER_CHECK(cfg_word.has_value(),
                              "BIRRD routing failed for a FEATHER pattern");
                std::fill(inputs.begin(), inputs.end(), std::nullopt);
                for (int64_t c = 0; c < cols_used; ++c) {
                    if (req.group_of_input[size_t(c)] >= 0) {
                        inputs[size_t(c)] = emission[size_t(c)];
                    }
                }
                birrd_.evaluateInto(*cfg_word, inputs, outputs, noc_scratch,
                                    &stats.birrd_switch_hops);

                // ---- OB accumulation and completion ----
                for (int64_t g = 0; g < num_groups; ++g) {
                    if (!group_live[size_t(g)] ||
                        wave_of_group[size_t(g)] != w) {
                        continue;
                    }
                    const int64_t bank = group_bank[size_t(g)];
                    const int64_t addr = group_line[size_t(g)];
                    const PortValue &val = outputs[size_t(bank)];
                    FEATHER_CHECK(val.has_value(),
                                  "BIRRD delivered no value to bank ", bank);
                    auto [it, inserted] =
                        ob.try_emplace(ob_key(bank, addr));
                    if (inserted) {
                        it->second.remaining = expected_contribs;
                        stats.peak_ob_entries = std::max(
                            stats.peak_ob_entries, int64_t(ob.size()));
                    }
                    it->second.acc += *val;
                    ++stats.ob_accumulates;
                    if (--it->second.remaining == 0) {
                        const int8_t q = requantize(int32_t(it->second.acc),
                                                    quant.multiplier,
                                                    quant.oact_zp);
                        stab_.pong().write(bank, addr, q);
                        ++stats.stab_writes;
                        recordTrace(TraceEvent::Kind::StabWrite, step_index,
                                    bank, addr);
                        ob.erase(it);
                    }
                }
            }
        }

        // Steady-state cycles for this step.
        const int64_t step_cycles =
            std::max({feed_cycles, bus_cycles, t1});
        stats.compute_cycles += step_cycles;
        stats.read_stall_cycles += std::max<int64_t>(0, feed_cycles - t1);
        stats.write_stall_cycles +=
            std::max<int64_t>(0, bus_cycles - rows_used);
        compute_since_load += step_cycles;

        ++step_index;
        more = nest_loops.advance(step);
    }

    FEATHER_CHECK(ob.empty(), "OB has ", ob.size(),
                  " incomplete accumulations at layer end");

    // Pipeline fill: row stagger + BIRRD pipeline + OB/QM stages.
    stats.weight_load_cycles_each = weight_load_cycles;
    stats.arena_peak_bytes = int64_t(arena_.peakBytes());
    stats.fill_cycles = cfg_.ah + birrd_.latency() + 2;
    stats.cycles = stats.compute_cycles + stats.weight_load_cycles +
                   stats.fill_cycles;

    // The written pong becomes the next layer's ping (inter-layer
    // pipelining via the ping-pong StaB).
    stab_.swap();
    current_layout_ = out_bound;

    return stats;
}

Int8Tensor
FeatherAccelerator::readActivations() const
{
    const Extents &ext = current_layout_.extents();
    const int64_t wpl = ceilDiv(current_layout_.lineSize(), int64_t(cfg_.aw));
    const bool is_gemm = ext[Dim::K] > 0;

    Int8Tensor out =
        is_gemm ? Int8Tensor({ext[Dim::M], ext[Dim::K]})
                : Int8Tensor({1, ext[Dim::C], ext[Dim::H], ext[Dim::W]});
    // Mirror of loadIacts: one bulk peek per (line, bank) run, then scatter
    // into the tensor.
    std::vector<int8_t> burst(static_cast<size_t>(wpl));
    for (int64_t line = 0; line < current_layout_.numLines(); ++line) {
        for (int64_t bank = 0;
             bank < std::min<int64_t>(cfg_.aw, current_layout_.lineSize());
             ++bank) {
            const int64_t n =
                ceilDiv(current_layout_.lineSize() - bank, int64_t(cfg_.aw));
            stab_.ping().peekRange(bank, line * wpl, burst.data(), n);
            for (int64_t j = 0; j < n; ++j) {
                const int64_t slot = bank + j * cfg_.aw;
                const Coord c = current_layout_.coordAt({line, slot});
                if (is_gemm) {
                    if (c[Dim::M] >= ext[Dim::M] ||
                        c[Dim::K] >= ext[Dim::K]) {
                        continue;
                    }
                    out.at2(c[Dim::M], c[Dim::K]) = burst[size_t(j)];
                } else {
                    if (c[Dim::C] >= ext[Dim::C] ||
                        c[Dim::H] >= ext[Dim::H] ||
                        c[Dim::W] >= ext[Dim::W]) {
                        continue;
                    }
                    out.at4(0, c[Dim::C], c[Dim::H], c[Dim::W]) =
                        burst[size_t(j)];
                }
            }
        }
    }
    return out;
}

} // namespace feather
