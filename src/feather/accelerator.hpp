#pragma once

/**
 * @file
 * FEATHER accelerator: the full compute pipeline of Fig. 7/8 —
 *
 *   StaB (ping) -> NEST -> BIRRD (reorder-in-reduction) -> OB -> QM
 *        -> StaB (pong, *new layout*)
 *
 * The simulator is cycle-accounting and bit-exact: every partial sum flows
 * through the NEST local reduction, the routed BIRRD network, the Output
 * Buffer's in-situ temporal accumulation, and the FBGEMM-style Quantize
 * Module; results land in per-bank StaB addresses dictated by the *next
 * layer's* layout (RIR, §IV). Numerics are validated against
 * tensor/reference_ops in the test suite.
 *
 * Timing model (per temporal step, steady state):
 *   cycles = max(feed, bus, t1)
 *     feed = iact delivery cycles including StaB bank conflicts
 *            (concordant layouts give feed == t1)
 *     bus  = one emission per row, plus serialization when two reduction
 *            groups target the same StaB bank (§IV-B write-port matching)
 *     t1   = Phase-1 local reduction length
 * plus the AH^2 weight preload for the first tile (later tiles load into
 * the shadow ping-pong registers, exposed only if longer than compute) and
 * a one-off pipeline fill of AH + BIRRD latency.
 */

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "buffer/scratchpad.hpp"
#include "common/arena.hpp"
#include "feather/config.hpp"
#include "layout/layout.hpp"
#include "nest/nest_array.hpp"
#include "nest/nest_mapping.hpp"
#include "noc/router.hpp"
#include "tensor/tensor.hpp"
#include "workload/shapes.hpp"

namespace feather {

/**
 * Extents of a layer's oAct tensor in next-layer iAct space — the space
 * oAct layouts are written in (RIR: StaB pong holds the next layer's
 * inputs): conv (M,P,Q) -> (C,H,W), GEMM N -> K. This is the binding
 * FeatherAccelerator::run applies to its out_layout; layout validators
 * must use it too.
 */
Extents oactIactExtents(const LayerSpec &layer);

/** Dims reduced by the layer (their outputs accumulate): GEMM K; conv
 *  C,R,S; depthwise R,S. Shared by the cycle simulator and the analytic
 *  model (feather/analytic.hpp). */
bool isReducedDim(const LayerSpec &layer, Dim d);

/** Translate an oAct coordinate into next-layer iAct space for layout
 *  addressing: conv (M,P,Q) -> (C,H,W); GEMM (M,N) -> (M,K). */
Coord oactToIactSpace(const LayerSpec &layer, const Coord &o);

/** One entry of the Fig. 11-style read/write trace. */
struct TraceEvent
{
    enum class Kind : uint8_t { StabRead, StabWrite } kind;
    int64_t step;  ///< temporal step index
    int64_t bank;
    int64_t addr;  ///< line within the bank
};

/** The FEATHER accelerator instance. */
class FeatherAccelerator
{
  public:
    explicit FeatherAccelerator(FeatherConfig cfg);

    const FeatherConfig &config() const { return cfg_; }

    /**
     * Load a conv iAct tensor [1,C,H,W] (or GEMM input [M,K]) into StaB
     * ping under @p layout, as the host/DMA would before the first layer.
     */
    void loadIacts(const Int8Tensor &iacts, const Layout &layout);

    /**
     * Execute one layer.
     *
     * @param layer      conv / depthwise-conv / GEMM shape
     * @param weights    conv [M,C,R,S] (or [C,1,R,S] depthwise), GEMM [K,N]
     * @param mapping    NEST work assignment
     * @param out_layout layout the oActs materialise in (the next layer's
     *                   concordant layout — this is the RIR switch)
     * @param quant      zero points and QM multiplier
     *
     * Reads iActs from StaB ping, writes quantized oActs to StaB pong,
     * then swaps ping/pong so the next run() consumes them.
     */
    LayerStats run(const LayerSpec &layer, const Int8Tensor &weights,
                   const NestMapping &mapping, const Layout &out_layout,
                   const LayerQuant &quant);

    /**
     * Read the current StaB ping contents back as a tensor (the oActs of
     * the last run() / the iActs of the next). Conv shape [1,M,P,Q]; GEMM
     * [M,N].
     */
    Int8Tensor readActivations() const;

    /** Layout currently bound to StaB ping. */
    const BoundLayout &currentLayout() const { return current_layout_; }

    /** Router statistics (config generation / instruction buffer). */
    const RouterStats &routerStats() const { return router_.stats(); }

    /** Enable capture of the first @p max_events StaB reads/writes. */
    void enableTrace(size_t max_events);
    const std::vector<TraceEvent> &trace() const { return trace_; }

  private:
    struct ColAssign
    {
        /** Per-dim spatial index of this column (by Dim). */
        Coord idx;
        /** Reduction-group id of this column (-1 if none assigned). */
        int group = -1;
    };

    void recordTrace(TraceEvent::Kind kind, int64_t step, int64_t bank,
                     int64_t addr);

    FeatherConfig cfg_;
    NestArray nest_;
    BirrdNetwork birrd_;
    BirrdRouter router_;
    PingPong<BankedScratchpad<int8_t>> stab_;
    BoundLayout current_layout_;
    Arena arena_; ///< per-run scratch; reset (blocks reused) each run()
    bool iacts_loaded_ = false;

    std::vector<TraceEvent> trace_;
    size_t trace_cap_ = 0;
};

} // namespace feather
